package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHistIndexRoundTrip pins the bucket layout: every value lands in a
// bucket whose upper bound is ≥ the value and within the documented
// relative width, and bucket indexes are monotone in the value.
func TestHistIndexRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 63, 64, 65, 127, 128, 1000, int64(time.Millisecond),
		1 << 20, (1 << 20) + 17, int64(time.Hour), math.MaxInt64 / 2, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("histIndex not monotone at %d", v)
		}
		prev = i
		up := histUpper(i)
		if up < v {
			t.Fatalf("histUpper(%d) = %d < value %d", i, up, v)
		}
		if v >= histSubBuckets && up-v >= v/histRelErrInv+1 {
			t.Fatalf("bucket width at %d: upper %d exceeds relative bound", v, up)
		}
		if v < histSubBuckets && up != v {
			t.Fatalf("exact region: histUpper(histIndex(%d)) = %d", v, up)
		}
	}
}

// TestHistQuantileAgreesWithSeries drives random workloads (log-normal
// shaped, like the latency distributions the testbed produces) through
// both backends: every Hist percentile must bracket the exact Series
// percentile from above within the documented 1/64 relative bin error.
func TestHistQuantileAgreesWithSeries(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist("h")
		s := NewSeries("s")
		n := 1000 + rng.Intn(9000)
		for i := 0; i < n; i++ {
			d := time.Duration(float64(5*time.Millisecond) * math.Exp(rng.NormFloat64()))
			h.Record(d)
			s.Add(d)
		}
		if h.Count() != int64(s.Len()) {
			t.Fatalf("seed %d: count %d vs %d", seed, h.Count(), s.Len())
		}
		for _, p := range []float64{0, 10, 50, 90, 95, 99, 99.9, 100} {
			exact, approx := s.Percentile(p), h.Percentile(p)
			if approx < exact {
				t.Fatalf("seed %d p%.1f: hist %v underestimates exact %v", seed, p, approx, exact)
			}
			if bound := exact + exact/histRelErrInv + 1; approx > bound {
				t.Fatalf("seed %d p%.1f: hist %v exceeds error bound %v (exact %v)", seed, p, approx, bound, exact)
			}
		}
		if h.Min() != s.Min() || h.Max() != s.Max() {
			t.Fatalf("seed %d: min/max %v/%v vs exact %v/%v", seed, h.Min(), h.Max(), s.Min(), s.Max())
		}
		if h.Mean() != s.Mean() {
			t.Fatalf("seed %d: mean %v vs exact %v", seed, h.Mean(), s.Mean())
		}
	}
}

// TestHistMergeOrderIndependence merges per-replication histograms in
// every order of three parts: counts, extremes, and all quantiles must
// be identical, and equal to recording everything into one Hist.
func TestHistMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Hist, 3)
	all := NewHist("all")
	for i := range parts {
		parts[i] = NewHist("part")
		for j := 0; j < 500*(i+1); j++ {
			d := time.Duration(rng.Int63n(int64(3 * time.Second)))
			parts[i].Record(d)
			all.Record(d)
		}
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	quantiles := []float64{0, 25, 50, 75, 90, 99, 100}
	for _, ord := range orders {
		m := NewHist("merged")
		for _, i := range ord {
			m.Merge(parts[i])
		}
		if m.Count() != all.Count() || m.Min() != all.Min() || m.Max() != all.Max() || m.Mean() != all.Mean() {
			t.Fatalf("order %v: count/min/max/mean diverge from single-hist recording", ord)
		}
		for _, p := range quantiles {
			if m.Percentile(p) != all.Percentile(p) {
				t.Fatalf("order %v p%.0f: %v vs %v", ord, p, m.Percentile(p), all.Percentile(p))
			}
		}
	}
	// Merging an empty or nil hist is a no-op.
	before := all.Percentile(50)
	all.Merge(NewHist("empty"))
	all.Merge(nil)
	if all.Percentile(50) != before {
		t.Fatal("merging empty hist changed quantiles")
	}
}

// TestHistRecordZeroAlloc is the streaming guarantee: recording into a
// hist never allocates, no matter how many samples have been seen.
func TestHistRecordZeroAlloc(t *testing.T) {
	h := NewHist("alloc")
	d := 37 * time.Microsecond
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(d)
		d += 911 * time.Nanosecond
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestHistEmptyAndClamp pins the edge cases: an empty hist reports
// zeros, and negative samples clamp to zero instead of corrupting the
// bucket index.
func TestHistEmptyAndClamp(t *testing.T) {
	h := NewHist("empty")
	if h.Count() != 0 || h.Median() != 0 || h.Percentile(99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty hist stats non-zero")
	}
	h.Record(-time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Median() != 0 {
		t.Fatalf("negative sample not clamped: min %v max %v", h.Min(), h.Max())
	}
}

// BenchmarkHistRecord is the telemetry hot path: one Record per load
// arrival at millions of arrivals per run. Gated at 0 allocs/op in CI
// (make bench-load-guard).
func BenchmarkHistRecord(b *testing.B) {
	h := NewHist("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * 37)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}
