GO ?= go

.PHONY: build test race vet check bench bench-scale bench-save bench-sim bench-sim-save bench-sim-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: everything must build, vet clean, and pass the
# race-enabled test suite.
check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-scale runs the wall-clock control-plane scale benchmarks: the
# parallel packet-in throughput path and FlowMemory under a large
# resident population.
bench-scale:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/

# bench-save archives a bench-scale run to the next free BENCH_<n>.json
# (parsed results plus benchstat-compatible raw output).
bench-save:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/ | $(GO) run ./cmd/benchsave

# bench-sim runs the discrete-event engine microbenchmarks: a full TCP
# request/response over the emulated network, the 8-client switch fan-in,
# and the allocation-free steady-state packet hop.
SIM_BENCHES = BenchmarkRequestResponse|BenchmarkPacketSwitchingFanIn|BenchmarkPacketHop
bench-sim:
	$(GO) test -bench='$(SIM_BENCHES)' -benchtime=2s -benchmem -run=^$$ ./internal/netem/

# bench-sim-save archives a bench-sim run (BENCH_3.json is this repo's
# checked-in engine baseline).
bench-sim-save:
	$(GO) test -bench='$(SIM_BENCHES)' -benchtime=2s -benchmem -run=^$$ ./internal/netem/ | $(GO) run ./cmd/benchsave

# bench-sim-guard is the CI smoke gate: the steady-state packet hop must
# stay allocation-free. allocs/op is deterministic, so the ceiling holds
# on shared runners.
bench-sim-guard:
	$(GO) test -bench='BenchmarkPacketHop' -benchtime=100x -benchmem -run=^$$ ./internal/netem/ | $(GO) run ./cmd/benchguard -bench 'BenchmarkPacketHop$$' -max-allocs 0
