GO ?= go

.PHONY: build test race vet check bench bench-scale bench-save bench-sim bench-sim-save bench-sim-guard bench-load bench-load-save bench-load-guard bench-handover-save fastpath-diff sched-diff shard-diff seed-diff mobility-diff chaos-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: everything must build, vet clean, and pass the
# race-enabled test suite.
check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-scale runs the wall-clock control-plane scale benchmarks: the
# parallel packet-in throughput path and FlowMemory under a large
# resident population.
bench-scale:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/

# bench-save archives a bench-scale run to the next free BENCH_<n>.json
# (parsed results plus benchstat-compatible raw output).
bench-save:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/ | $(GO) run ./cmd/benchsave

# bench-sim runs the discrete-event engine microbenchmarks: a full TCP
# request/response over the emulated network, the 8-client switch fan-in,
# the multi-hop 83 KiB bulk transfer (with its per-hop baseline twin for
# the fast-path A/B ratio), and the allocation-free steady-state packet
# hop.
SIM_BENCHES = BenchmarkRequestResponse|BenchmarkPacketSwitchingFanIn|BenchmarkBulkTransfer|BenchmarkPacketHop
bench-sim:
	$(GO) test -bench='$(SIM_BENCHES)' -benchtime=2s -benchmem -run=^$$ ./internal/netem/

# bench-sim-save archives a bench-sim run (BENCH_3.json is this repo's
# checked-in engine baseline).
bench-sim-save:
	$(GO) test -bench='$(SIM_BENCHES)' -benchtime=2s -benchmem -run=^$$ ./internal/netem/ | $(GO) run ./cmd/benchsave

# bench-sim-guard is the CI smoke gate: the steady-state packet hop must
# stay allocation-free, and the fan-in and bulk-transfer datapaths must
# hold their allocation ceilings (measured 85 and 18 allocs/op, gated
# with headroom for scheduling variance). allocs/op is deterministic, so
# the ceilings hold on shared runners.
bench-sim-guard:
	$(GO) test -bench='BenchmarkPacketHop|BenchmarkPacketSwitchingFanIn|BenchmarkBulkTransfer$$' -benchtime=100x -benchmem -run=^$$ ./internal/netem/ | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkPacketHop$$=0' \
			-gate 'BenchmarkPacketSwitchingFanIn$$=96' \
			-gate 'BenchmarkBulkTransfer$$=24'

# bench-load runs the scale benchmarks: the streaming-telemetry record
# path, the O(1) Zipf alias draw, the scheduler at one million pending
# timers (wheel vs heap, post/stop churn and firing drain), the
# windowed shard-barrier round trip, and the 250k-flow open-loop load
# engine end to end — sequential and sharded four ways.
bench-load:
	$(GO) test -bench='BenchmarkHistRecord' -benchtime=2s -benchmem -run=^$$ ./internal/metrics/
	$(GO) test -bench='BenchmarkZipfAlias' -benchtime=2s -benchmem -run=^$$ ./internal/testbed/
	$(GO) test -bench='BenchmarkMillionTimers' -benchtime=2s -benchmem -run=^$$ ./internal/vclock/
	$(GO) test -bench='BenchmarkShardBarrier' -benchtime=2s -benchmem -run=^$$ ./internal/vclock/
	$(GO) test -bench='BenchmarkOpenLoopLoad' -benchtime=1x -benchmem -run=^$$ .

# bench-load-save archives a bench-load run (BENCH_7.json is this repo's
# checked-in sharded-engine baseline, taken at GOMAXPROCS=4 — read it
# with the archived gomaxprocs/numcpu fields; BENCH_6.json was the
# pre-sharding streaming-telemetry record).
bench-load-save:
	( $(GO) test -bench='BenchmarkHistRecord' -benchtime=2s -benchmem -run=^$$ ./internal/metrics/ ; \
	  $(GO) test -bench='BenchmarkZipfAlias' -benchtime=2s -benchmem -run=^$$ ./internal/testbed/ ; \
	  $(GO) test -bench='BenchmarkMillionTimers' -benchtime=2s -benchmem -run=^$$ ./internal/vclock/ ; \
	  $(GO) test -bench='BenchmarkShardBarrier' -benchtime=2s -benchmem -run=^$$ ./internal/vclock/ ; \
	  $(GO) test -bench='BenchmarkOpenLoopLoad' -benchtime=1x -benchmem -run=^$$ . ) | \
		$(GO) run ./cmd/benchsave BENCH_7.json

# bench-load-guard gates the telemetry and timer hot paths on allocation
# counts: recording a latency sample into the streaming histogram and
# drawing a Zipf rank through the alias table must be allocation-free
# (measurement must never become the load engine's bottleneck again),
# posting and cancelling a timer under a 1M-timer population must stay
# allocation-free on the wheel, one windowed shard-barrier round trip
# (Send2 + merge + block/resume) must be allocation-free in steady
# state, and one full 250k-flow / 500k-arrival open-loop run must hold
# its measured ceiling sequential and sharded (9.21M and 9.24M allocs,
# gated with headroom — telemetry and the barrier contribute none of
# them), and one complete handover (link re-home, make-before-break
# re-steer, route convergence, and a verified session round) must stay
# under 64 allocs (measured 42). The (-\d+)?$ tail keeps the gates
# matching on multi-core
# runners, where go test suffixes -GOMAXPROCS.
bench-load-guard:
	$(GO) test -bench='BenchmarkHistRecord' -benchtime=1000000x -benchmem -run=^$$ ./internal/metrics/ | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkHistRecord(-[0-9]+)?$$=0'
	$(GO) test -bench='BenchmarkZipfAlias' -benchtime=1000000x -benchmem -run=^$$ ./internal/testbed/ | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkZipfAlias(-[0-9]+)?$$=0'
	$(GO) test -bench='BenchmarkMillionTimers/wheel' -benchtime=100000x -benchmem -run=^$$ ./internal/vclock/ | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkMillionTimers/wheel/post-stop(-[0-9]+)?$$=0' \
			-gate 'BenchmarkMillionTimers/wheel/drain(-[0-9]+)?$$=0'
	$(GO) test -bench='BenchmarkShardBarrier' -benchtime=100000x -benchmem -run=^$$ ./internal/vclock/ | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkShardBarrier(-[0-9]+)?$$=0'
	$(GO) test -bench='BenchmarkOpenLoopLoad' -benchtime=1x -benchmem -run=^$$ . | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkOpenLoopLoad(-[0-9]+)?$$=11000000' \
			-gate 'BenchmarkOpenLoopLoadSharded(-[0-9]+)?$$=11000000'
	$(GO) test -bench='BenchmarkHandover$$' -benchtime=200x -benchmem -run=^$$ . | \
		$(GO) run ./cmd/benchguard \
			-gate 'BenchmarkHandover(-[0-9]+)?$$=64'

# bench-handover-save archives the handover benchmark (BENCH_8.json is
# this repo's checked-in mobility baseline: 42 allocs per complete
# handover, 8 ms simulated control-plane p50).
bench-handover-save:
	$(GO) test -bench='BenchmarkHandover$$' -benchtime=200x -benchmem -run=^$$ . | \
		$(GO) run ./cmd/benchsave BENCH_8.json

# shard-diff verifies sharded execution is invisible: the load
# experiment's stdout — fingerprint row included — must be byte-
# identical whether the run is sequential or service-partitioned across
# 2, 4, or 8 clocks. Only stdout is compared: wall-clock, peak heap,
# and the shard count itself go to stderr by design.
shard-diff:
	$(GO) build -o /tmp/edgesim-shdiff ./cmd/edgesim
	/tmp/edgesim-shdiff -exp load -flows 50000 -shards 1 > /tmp/shdiff-1.txt
	/tmp/edgesim-shdiff -exp load -flows 50000 -shards 2 > /tmp/shdiff-2.txt
	/tmp/edgesim-shdiff -exp load -flows 50000 -shards 4 > /tmp/shdiff-4.txt
	/tmp/edgesim-shdiff -exp load -flows 50000 -shards 8 > /tmp/shdiff-8.txt
	diff /tmp/shdiff-1.txt /tmp/shdiff-2.txt
	diff /tmp/shdiff-1.txt /tmp/shdiff-4.txt
	diff /tmp/shdiff-1.txt /tmp/shdiff-8.txt
	@echo "shard-diff: load output byte-identical across 1/2/4/8 shards"

# seed-diff is the golden-output gate: the canonical experiment suite
# (-exp all -n 5 -seed 1) must be byte-identical to the committed
# golden file, with the fast path on and off. Any intentional output
# change must regenerate testdata/golden/exp_all_n5_seed1.txt in the
# same commit and justify itself in review.
seed-diff:
	$(GO) build -o /tmp/edgesim-golden ./cmd/edgesim
	/tmp/edgesim-golden -exp all -n 5 -seed 1 > /tmp/golden-on.txt
	/tmp/edgesim-golden -exp all -n 5 -seed 1 -no-fastpath > /tmp/golden-off.txt
	diff testdata/golden/exp_all_n5_seed1.txt /tmp/golden-on.txt
	diff testdata/golden/exp_all_n5_seed1.txt /tmp/golden-off.txt
	@echo "seed-diff: -exp all output matches the committed golden file (fast path on and off)"

# mobility-diff verifies the handover subsystem is deterministic and
# invisible to the execution knobs: the mobility experiment's output —
# session checksum included — must be byte-identical across worker
# counts, schedulers, and the fast path, and every session must survive
# every handover (zero continuity breaks is asserted by the run itself
# failing the final line otherwise).
mobility-diff:
	$(GO) build -o /tmp/edgesim-mob ./cmd/edgesim
	/tmp/edgesim-mob -exp mobility -seed 1 -parallel 1 > /tmp/mob-1.txt
	/tmp/edgesim-mob -exp mobility -seed 1 -parallel 4 > /tmp/mob-4.txt
	/tmp/edgesim-mob -exp mobility -seed 1 -sched heap > /tmp/mob-heap.txt
	/tmp/edgesim-mob -exp mobility -seed 1 -no-fastpath > /tmp/mob-nofp.txt
	diff /tmp/mob-1.txt /tmp/mob-4.txt
	diff /tmp/mob-1.txt /tmp/mob-heap.txt
	diff /tmp/mob-1.txt /tmp/mob-nofp.txt
	@echo "mobility-diff: mobility output byte-identical across -parallel, -sched, -no-fastpath"

# fastpath-diff verifies the datapath fast path is invisible: the full
# experiment suite must be byte-identical with the fast path on and off,
# sequentially and under parallel replications.
fastpath-diff:
	$(GO) build -o /tmp/edgesim-fpdiff ./cmd/edgesim
	/tmp/edgesim-fpdiff -exp all -n 5 -seed 1 > /tmp/fpdiff-on.txt
	/tmp/edgesim-fpdiff -exp all -n 5 -seed 1 -no-fastpath > /tmp/fpdiff-off.txt
	/tmp/edgesim-fpdiff -exp all -n 5 -seed 1 -parallel 4 > /tmp/fpdiff-on-par.txt
	/tmp/edgesim-fpdiff -exp all -n 5 -seed 1 -no-fastpath -parallel 4 > /tmp/fpdiff-off-par.txt
	diff /tmp/fpdiff-on.txt /tmp/fpdiff-off.txt
	diff /tmp/fpdiff-on.txt /tmp/fpdiff-on-par.txt
	diff /tmp/fpdiff-on.txt /tmp/fpdiff-off-par.txt
	@echo "fastpath-diff: experiment outputs byte-identical"

# sched-diff verifies the timing wheel is invisible: the full experiment
# suite must be byte-identical under the wheel and the retained binary
# heap, with and without the datapath fast path, sequentially and under
# parallel replications.
sched-diff:
	$(GO) build -o /tmp/edgesim-sdiff ./cmd/edgesim
	/tmp/edgesim-sdiff -exp all -n 5 -seed 1 -sched wheel > /tmp/sdiff-wheel.txt
	/tmp/edgesim-sdiff -exp all -n 5 -seed 1 -sched heap > /tmp/sdiff-heap.txt
	/tmp/edgesim-sdiff -exp all -n 5 -seed 1 -sched heap -no-fastpath > /tmp/sdiff-heap-nofp.txt
	/tmp/edgesim-sdiff -exp all -n 5 -seed 1 -sched heap -parallel 4 > /tmp/sdiff-heap-par.txt
	diff /tmp/sdiff-wheel.txt /tmp/sdiff-heap.txt
	diff /tmp/sdiff-wheel.txt /tmp/sdiff-heap-nofp.txt
	diff /tmp/sdiff-wheel.txt /tmp/sdiff-heap-par.txt
	@echo "sched-diff: experiment outputs byte-identical under wheel and heap"

# chaos-check is the chaos-hardening gate: the full-trace chaos replay
# must hold its invariants (exit 0) under the race detector's build,
# and the seeded-random convergence property plus the multi-seed
# invariant suite must pass with -race.
chaos-check:
	$(GO) build -race -o /tmp/edgesim-chaos ./cmd/edgesim
	/tmp/edgesim-chaos -exp chaos -seed 1
	$(GO) test -race -run 'TestChaos' ./internal/testbed/
	@echo "chaos-check: invariants held"
