GO ?= go

.PHONY: build test race vet check bench bench-scale bench-save

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: everything must build, vet clean, and pass the
# race-enabled test suite.
check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-scale runs the wall-clock control-plane scale benchmarks: the
# parallel packet-in throughput path and FlowMemory under a large
# resident population.
bench-scale:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/

# bench-save archives a bench-scale run to the next free BENCH_<n>.json
# (parsed results plus benchstat-compatible raw output).
bench-save:
	$(GO) test -bench='PacketInThroughput|FlowMemoryScale' -benchtime=2s -benchmem -run=^$$ ./internal/core/ | $(GO) run ./cmd/benchsave
