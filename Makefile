GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: everything must build, vet clean, and pass the
# race-enabled test suite.
check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
