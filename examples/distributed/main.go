// Distributed on-demand deployment: one SDN controller manages two
// gNBs (ingress switches), each with its own clients and its own near
// edge cluster. The same registered service ends up with an instance in
// *each* zone — deployed on demand by that zone's first request, with
// the farther zone's instance bridging the gap in the meantime (Fig. 3).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			WithDocker: true, // zone A's near edge (the EGS)
			TwoZones:   true, // adds gNB-2 with clients and edge-zoneb
			Seed:       9,
		})
		if err != nil {
			log.Fatal(err)
		}
		nginx, _ := catalog.ByKey("nginx")
		svc, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
		if err != nil {
			log.Fatal(err)
		}
		tb.PrePull(svc, "edge-docker")
		tb.PrePull(svc, "edge-zoneb")

		fmt.Println("one registered address, two zones, one controller")
		fmt.Println()

		resA, err := tb.Request(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zone A first request: %8s  → deployed at edge-docker (zone A's optimal edge)\n",
			metrics.FmtMS(resA.Total))

		resB, err := tb.RequestFromZoneB(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zone B first request: %8s  → served by zone A's instance while zone B deploys\n",
			metrics.FmtMS(resB.Total))

		for len(tb.ZoneB.Instances(svc.Svc.Name)) == 0 {
			clk.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("\nbackground deployment finished: the service now runs in both zones\n")
		fmt.Printf("  edge-docker instances: %d\n", len(tb.Docker.Instances(svc.Svc.Name)))
		fmt.Printf("  edge-zoneb instances:  %d\n", len(tb.ZoneB.Instances(svc.Svc.Name)))

		// After the old flows idle out, each zone is served locally.
		clk.Sleep(15 * time.Second)
		warmA, _ := tb.Request(0, svc)
		warmB, _ := tb.RequestFromZoneB(0, svc)
		fmt.Printf("\nsteady state (per-zone locality):\n")
		fmt.Printf("  zone A request: %8s\n", metrics.FmtMS(warmA.Total))
		fmt.Printf("  zone B request: %8s (no trunk detour)\n", metrics.FmtMS(warmB.Total))

		locB, _ := tb.Controller.ClientLocation(tb.ZoneBClient(0).IP())
		fmt.Printf("\ndispatcher's location record for a zone B client: switch=%s port=%d\n",
			locB.Switch, locB.InPort)
	})
}
