// Trace replay: the paper's full workload — 1708 requests to 42 edge
// services over five minutes, derived from a (synthetic) bigFlows.pcap
// capture — replayed against the live emulated testbed with on-demand
// deployment. Every service is deployed by its own first request.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	cfg := trace.DefaultBigFlows()

	// Build the workload the way the paper does: synthesize the capture
	// file, then extract TCP conversations to port 80 and keep servers
	// with ≥20 requests.
	generated := trace.Generate(cfg)
	var pcapFile bytes.Buffer
	if err := generated.WritePcap(&pcapFile, vclock.Epoch); err != nil {
		log.Fatal(err)
	}
	workload, err := trace.FromPcap(bytes.NewReader(pcapFile.Bytes()), cfg.Duration, cfg.MinPerService)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d bytes; recovered %d requests to %d services\n",
		pcapFile.Len(), workload.TotalRequests(), len(workload.Counts))
	fmt.Println(metrics.Histogram("Fig. 9 — requests per second",
		workload.RequestsPerSecond(), time.Second, 20))
	fmt.Println(metrics.Histogram("Fig. 10 — deployments per second (first requests)",
		workload.DeploymentsPerSecond(), time.Second, 20))

	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{WithDocker: true, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		nginx, _ := catalog.ByKey("nginx")
		handles, err := tb.RegisterMany(nginx, len(workload.Counts))
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.PrePull(handles[0], "edge-docker"); err != nil {
			log.Fatal(err)
		}

		start := clk.Now()
		totals, _ := tb.ReplayTrace(workload, handles)
		fmt.Printf("replayed %d requests in %v of simulated time\n",
			totals.Len(), clk.Since(start).Round(time.Second))

		t := metrics.NewTable("request latency (client view)", "percentile", "time_total")
		t.AddRow("p50", metrics.FmtMS(totals.Median()))
		t.AddRow("p90", metrics.FmtMS(totals.Percentile(90)))
		t.AddRow("p99", metrics.FmtMS(totals.Percentile(99)))
		t.AddRow("max (first request incl. deployment)", metrics.FmtMS(totals.Max()))
		fmt.Println(t)

		stats := tb.Controller.Stats()
		fmt.Printf("controller: %d packet-ins, %d deployments, %d memory hits, %d flows installed\n",
			stats.PacketIns, stats.ScaleUps, stats.MemoryHits, stats.FlowsInstalled)
	})
}
