// Serverless side-by-side (the paper's future work, §VIII): the same
// transparent-access pipeline deploys a WebAssembly function next to
// containers. The controller needs no changes — the serverless runtime
// is just another edge cluster — and the first request completes in
// tens of milliseconds because isolates skip namespaces and image
// unpacking entirely.
package main

import (
	"fmt"
	"log"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			WithFaas:   true,
			WithDocker: true,
			Seed:       5,
		})
		if err != nil {
			log.Fatal(err)
		}

		// The same nginx-shaped service, twice: once as a container,
		// once as a Wasm module, at two registered addresses.
		container, _ := catalog.ByKey("nginx")
		wasm, err := catalog.WasmService("nginx")
		if err != nil {
			log.Fatal(err)
		}
		ch, err := tb.RegisterCatalogService(container, trace.ServiceAddr(0))
		if err != nil {
			log.Fatal(err)
		}
		wh, err := tb.RegisterCatalogService(wasm, trace.ServiceAddr(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("container image: %8d KiB (%d layers)\n", container.TotalImageBytes()/1024, container.TotalLayers())
		fmt.Printf("wasm module:     %8d KiB\n\n", wasm.TotalImageBytes()/1024)

		// Cold caches: measure the full Pull phase for both worlds.
		start := clk.Now()
		if err := tb.PrePull(ch, "edge-docker"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("image pull + unpack:      %s\n", metrics.FmtMS(clk.Since(start)))
		start = clk.Now()
		if err := tb.PrePull(wh, "edge-faas"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("module fetch + compile:   %s\n\n", metrics.FmtMS(clk.Since(start)))

		// First requests: on-demand deployment with waiting, both worlds.
		cres, err := tb.Request(0, ch)
		if err != nil {
			log.Fatal(err)
		}
		wres, err := tb.Request(1, wh)
		if err != nil {
			log.Fatal(err)
		}
		t := metrics.NewTable("first request (on-demand deployment with waiting)",
			"variant", "time_total", "served by")
		t.AddRow("container", metrics.FmtMS(cres.Total), tb.Docker.Instances(ch.Svc.Name)[0].Addr.String())
		t.AddRow("wasm", metrics.FmtMS(wres.Total), tb.Faas.Instances(wh.Svc.Name)[0].Addr.String())
		fmt.Println(t)

		fmt.Printf("cold-start advantage: %.0f×\n", float64(cres.Total)/float64(wres.Total))
		fmt.Println("\nthe trade-off: serverless variants are single functions —")
		if _, err := catalog.WasmService("nginxpy"); err != nil {
			fmt.Printf("  %v\n", err)
		}
	})
}
