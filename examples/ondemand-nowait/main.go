// On-demand deployment *without* waiting (Fig. 3 of the paper): a
// latency-critical service already runs in a farther edge cluster. The
// first request is redirected there immediately while the controller
// deploys a new instance in the optimal (nearest) edge in parallel;
// once it runs, future requests go to the optimal location.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			WithDocker:  true, // the optimal edge
			WithFarEdge: true, // "another edge, possibly further away"
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		nginx, _ := catalog.ByKey("nginx")
		svc, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
		if err != nil {
			log.Fatal(err)
		}
		tb.PrePull(svc, "edge-docker")
		tb.PrePull(svc, "edge-far")

		// The far edge already has a running instance — e.g. deployed
		// for other users earlier.
		if _, err := tb.Controller.PreDeploy(svc.Addr, "edge-far"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("instance already running in edge-far (8 ms away)")

		// First request: no waiting — the far instance answers while
		// the optimal edge deploys in the background.
		res, err := tb.Request(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("first request, served by the far edge:   %s\n", metrics.FmtMS(res.Total))

		// Watch the optimal edge come up.
		start := clk.Now()
		for len(tb.Docker.Instances(svc.Svc.Name)) == 0 {
			clk.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("optimal edge instance ready after:        %s (deployed in parallel)\n",
			metrics.FmtMS(clk.Since(start)))

		// A new client is redirected to the optimal location.
		clk.Sleep(time.Second)
		res, err = tb.Request(5, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("new client, served by the optimal edge:   %s\n", metrics.FmtMS(res.Total))

		stats := tb.Controller.Stats()
		fmt.Printf("\ncontroller: %d no-wait deployments, %d scale-ups, %d schedule calls\n",
			stats.DeploysNoWait, stats.ScaleUps, stats.ScheduleCalls)
	})
}
