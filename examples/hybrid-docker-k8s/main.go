// Hybrid deployment (§VII of the paper): "we can combine the best of
// both worlds. First, we launch an edge service via Docker to respond
// faster to the initial request. Then, we deploy the same service to
// Kubernetes for future requests" — fast initial response (Docker) plus
// automated cluster management (Kubernetes).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			WithDocker:      true,
			WithKube:        true,
			GlobalScheduler: core.SchedulerHybrid,
			Seed:            11,
		})
		if err != nil {
			log.Fatal(err)
		}
		nginx, _ := catalog.ByKey("nginx")
		svc, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
		if err != nil {
			log.Fatal(err)
		}
		tb.PrePull(svc, "edge-docker") // the shared containerd store serves both

		// First request: the hybrid scheduler holds it for the fast
		// Docker launch and deploys to Kubernetes in parallel.
		res, err := tb.Request(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("first request (Docker launch, hybrid):  %s\n", metrics.FmtMS(res.Total))

		// Kubernetes takes over for future requests.
		start := clk.Now()
		for len(tb.Kube.Instances(svc.Svc.Name)) == 0 {
			clk.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("kubernetes instance ready after:        %s (deployed in background)\n",
			metrics.FmtMS(clk.Since(start)))

		clk.Sleep(time.Second)
		res2, err := tb.Request(7, svc) // a new client
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("new client request:                     %s\n", metrics.FmtMS(res2.Total))
		if insts := tb.Kube.Instances(svc.Svc.Name); len(insts) > 0 {
			fmt.Printf("served by %s at %s\n", insts[0].Cluster, insts[0].Addr)
		}

		// With Kubernetes serving, the controller can retire the Docker
		// instance (manual here; idle scale-down automates it).
		if err := tb.Docker.ScaleDown(svc.Svc.Name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("docker instance retired; k8s manages the service from here on\n")

		stats := tb.Controller.Stats()
		fmt.Printf("\ncontroller: waiting=%d no-wait=%d scale-ups=%d\n",
			stats.DeploysWaiting, stats.DeploysNoWait, stats.ScaleUps)
	})
}
