// Quickstart: transparent access with on-demand deployment in a dozen
// lines. An emulated client requests a registered cloud address; the
// SDN controller intercepts the first packet, deploys Nginx in the edge
// cluster while the request waits, and redirects — the client never
// learns the edge exists.
package main

import (
	"fmt"
	"log"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		// The emulated C³ testbed: 20 Pi clients, OVS switch, SDN
		// controller, Docker on the EGS, cloud origins behind a WAN.
		tb, err := testbed.New(clk, testbed.Options{WithDocker: true, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}

		// Register the Nginx edge service under its public address. The
		// developer's definition only names the image; the controller
		// annotates everything else.
		nginx, _ := catalog.ByKey("nginx")
		svc, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %s at %s\n", svc.Svc.Name, svc.Addr)
		fmt.Println("--- annotated deployment ---")
		fmt.Print(svc.Svc.Annotated.DeploymentYAML)
		fmt.Println("--- generated service ---")
		fmt.Print(svc.Svc.Annotated.ServiceYAML)

		// Cache the image at the edge (the Pull phase would otherwise
		// dominate the first request).
		if err := tb.PrePull(svc, "edge-docker"); err != nil {
			log.Fatal(err)
		}

		// First request: held while the service deploys on demand.
		res, err := tb.Request(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfirst request (on-demand deployment with waiting): %s\n", metrics.FmtMS(res.Total))

		// Second request: rides the installed redirect flows.
		res, err = tb.Request(0, svc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("second request (flows installed):                   %s\n", metrics.FmtMS(res.Total))

		stats := tb.Controller.Stats()
		fmt.Printf("\ncontroller: %d packet-in, %d deployment (waiting), %d flows installed\n",
			stats.PacketIns, stats.DeploysWaiting, stats.FlowsInstalled)
		fmt.Printf("edge instances running: %d (cluster edge-docker)\n", len(tb.Docker.Instances(svc.Svc.Name)))
	})
}
