module github.com/c3lab/transparentedge

go 1.22
