// Command benchguard gates CI on benchmark regressions that are stable
// enough to assert exactly: allocation counts. It reads `go test -bench
// -benchmem` output on stdin and fails if any benchmark matching -bench
// reports more than -max-allocs allocs/op. Unlike ns/op, allocs/op is
// deterministic across machines, so the ceiling can be checked in and
// enforced on shared runners without flakiness.
//
//	go test -bench=PacketHop -benchtime=100x -benchmem -run='^$' ./internal/netem/ |
//	    go run ./cmd/benchguard -bench BenchmarkPacketHop -max-allocs 0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	bench := flag.String("bench", "", "regexp of benchmark names to guard (required)")
	maxAllocs := flag.Int64("max-allocs", 0, "maximum allowed allocs/op")
	flag.Parse()
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -bench is required")
		os.Exit(2)
	}
	nameRE, err := regexp.Compile(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -bench: %v\n", err)
		os.Exit(2)
	}

	resultLine := regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	checked, failed := 0, 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the CI log
		m := resultLine.FindStringSubmatch(line)
		if m == nil || !nameRE.MatchString(m[1]) {
			continue
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != "allocs/op" {
				continue
			}
			allocs, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: %s: bad allocs/op %q\n", m[1], fields[i])
				os.Exit(2)
			}
			checked++
			if allocs > *maxAllocs {
				failed++
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %d allocs/op exceeds ceiling %d\n",
					m[1], allocs, *maxAllocs)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read: %v\n", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no benchmark matching %q with allocs/op on stdin (did you pass -benchmem?)\n", *bench)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within %d allocs/op\n", checked, *maxAllocs)
}
