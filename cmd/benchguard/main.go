// Command benchguard gates CI on benchmark regressions that are stable
// enough to assert exactly: allocation counts. It reads `go test -bench
// -benchmem` output on stdin and fails if any gated benchmark reports
// more allocs/op than its ceiling. Unlike ns/op, allocs/op is
// deterministic across machines, so the ceilings can be checked in and
// enforced on shared runners without flakiness.
//
// Gates are given either as the legacy single pair
//
//	... | go run ./cmd/benchguard -bench BenchmarkPacketHop -max-allocs 0
//
// or as repeatable NAME_REGEXP=MAX pairs, all enforced in one pass:
//
//	go test -bench='PacketHop|FanIn|BulkTransfer' -benchtime=100x -benchmem -run='^$' ./internal/netem/ |
//	    go run ./cmd/benchguard \
//	        -gate 'BenchmarkPacketHop$=0' \
//	        -gate 'BenchmarkPacketSwitchingFanIn$=96' \
//	        -gate 'BenchmarkBulkTransfer$=24'
//
// Every gate must match at least one benchmark on stdin; a gate that
// matches nothing fails the run (it means the benchmark was renamed or
// the -bench filter dropped it, and a guard silently guarding nothing
// is exactly the failure mode this tool exists to prevent).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// gate is one benchmark-name pattern with its allocs/op ceiling.
type gate struct {
	spec    string
	re      *regexp.Regexp
	max     int64
	matched int
}

// gateList implements flag.Value for the repeatable -gate flag.
type gateList struct{ gates *[]*gate }

func (g gateList) String() string { return "" }

func (g gateList) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq < 1 {
		return fmt.Errorf("want NAME_REGEXP=MAX, got %q", s)
	}
	re, err := regexp.Compile(s[:eq])
	if err != nil {
		return err
	}
	max, err := strconv.ParseInt(s[eq+1:], 10, 64)
	if err != nil {
		return fmt.Errorf("bad ceiling in %q: %v", s, err)
	}
	*g.gates = append(*g.gates, &gate{spec: s, re: re, max: max})
	return nil
}

func main() {
	var gates []*gate
	bench := flag.String("bench", "", "regexp of benchmark names to guard (legacy single-gate form)")
	maxAllocs := flag.Int64("max-allocs", 0, "maximum allowed allocs/op for -bench")
	flag.Var(gateList{&gates}, "gate", "NAME_REGEXP=MAX_ALLOCS gate (repeatable)")
	flag.Parse()
	if *bench != "" {
		re, err := regexp.Compile(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: bad -bench: %v\n", err)
			os.Exit(2)
		}
		gates = append(gates, &gate{spec: fmt.Sprintf("%s=%d", *bench, *maxAllocs), re: re, max: *maxAllocs})
	}
	if len(gates) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: at least one -gate (or -bench) is required")
		os.Exit(2)
	}

	resultLine := regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	failed := 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the CI log
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, ok := allocsPerOp(m[2])
		if !ok {
			continue
		}
		for _, g := range gates {
			if !g.re.MatchString(m[1]) {
				continue
			}
			g.matched++
			if allocs > g.max {
				failed++
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %d allocs/op exceeds ceiling %d\n",
					m[1], allocs, g.max)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read: %v\n", err)
		os.Exit(2)
	}
	for _, g := range gates {
		if g.matched == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: gate %q matched no benchmark with allocs/op on stdin (did you pass -benchmem?)\n", g.spec)
			os.Exit(2)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
	for _, g := range gates {
		fmt.Printf("benchguard: %d benchmark(s) within gate %s\n", g.matched, g.spec)
	}
}

// allocsPerOp extracts the allocs/op value from a benchmark result
// tail, reporting ok=false when the metric is absent.
func allocsPerOp(tail string) (int64, bool) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i += 2 {
		if fields[i+1] != "allocs/op" {
			continue
		}
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: bad allocs/op %q\n", fields[i])
			os.Exit(2)
		}
		return v, true
	}
	return 0, false
}
