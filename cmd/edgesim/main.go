// Command edgesim regenerates every table and figure of the paper's
// evaluation on the emulated C³ testbed.
//
// Usage:
//
//	edgesim -exp all                 # everything
//	edgesim -exp fig11 -n 42         # one figure, full 42 deployments
//	edgesim -exp fig13 -service nginx
//
// Absolute numbers come from the calibrated timing model; the shape
// (who wins, by what factor) is the reproduced result. See
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

var allServices = []string{"asm", "nginx", "resnet", "nginxpy"}

// workers is the replication worker-pool size (the -parallel flag).
// Every figure builds its cells through testbed.RunParallel with this
// pool; results come back in index order, so any worker count produces
// byte-identical output to a sequential run.
var workers = 1

// emit renders one result table; -format csv swaps the renderer.
var emit = func(t *metrics.Table) { fmt.Println(t) }

func main() {
	exp := flag.String("exp", "all", "experiment: "+expNames()+" (chaos, load, and mobility run only when named)")
	n := flag.Int("n", testbed.DefaultDeployments, "deployments per run (paper: 42)")
	service := flag.String("service", "all", "service key: asm|nginx|resnet|nginxpy|all")
	seed := flag.Int64("seed", 1, "simulation seed")
	warm := flag.Int("warm", testbed.DefaultWarmRequests, "warm requests for fig16")
	parallel := flag.Int("parallel", 1, "workers for independent replications: 1 = sequential, 0 = GOMAXPROCS")
	format := flag.String("format", "table", "output format for tabular results: table|csv")
	noFastPath := flag.Bool("no-fastpath", false, "disable the datapath fast path (A/B verification; output must be identical)")
	sched := flag.String("sched", "wheel", "event scheduler: wheel|heap (A/B verification; output must be identical)")
	flows := flag.Int("flows", 0, "distinct flows for -exp load (default 20000; millions supported)")
	rate := flag.Float64("rate", 0, "mean arrivals/s for -exp load (default 5000); mean handovers/s for -exp mobility (default 0.5)")
	handovers := flag.Int("handovers", 0, "handover events for -exp mobility (default 16)")
	migrate := flag.Bool("migrate", false, "for -exp mobility: follow mobile clients with their services (deploy at the new zone's edge)")
	revisits := flag.Float64("revisits", 0, "mean extra arrivals per flow for -exp load (default 1.0)")
	shards := flag.Int("shards", 1, "parallel shards for -exp load (1 = sequential; output is byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	exectrace := flag.String("exectrace", "", "write a runtime execution trace to this file")
	flag.Parse()
	if !knownExp(*exp) {
		fmt.Fprintf(os.Stderr, "edgesim: unknown experiment %q\nvalid -exp values: %s\n", *exp, expNames())
		os.Exit(2)
	}
	workers = *parallel
	if *format == "csv" {
		emit = func(t *metrics.Table) { fmt.Print(t.CSV()) }
	}
	testbed.DefaultNoFastPath = *noFastPath
	kind, err := vclock.ParseSchedulerKind(*sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgesim: -sched: %v\n", err)
		os.Exit(2)
	}
	vclock.SetDefaultScheduler(kind)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edgesim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "edgesim: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	// -blockprofile and -mutexprofile are the sharded engine's
	// diagnostics: barrier stalls show up as channel waits in the block
	// profile, outbox contention in the mutex profile.
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: -exectrace: %v\n", err)
			os.Exit(1)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: -exectrace: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}

	services := allServices
	if *service != "all" {
		services = []string{*service}
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("tableI", func() error {
		emit(testbed.TableI())
		return nil
	})
	run("fig9", func() error { return fig9(*seed) })
	run("fig10", func() error { return fig10(*seed) })
	run("fig11", func() error { return phases("Fig. 11 — total time (median) to scale up", services, *n, *seed, true) })
	run("fig12", func() error {
		return phases("Fig. 12 — total time (median) to create + scale up", services, *n, *seed, false)
	})
	run("fig13", func() error { return fig13(services, *seed) })
	run("fig14", func() error {
		return waits("Fig. 14 — wait time (median) until ready after scale up", services, *n, *seed, true)
	})
	run("fig15", func() error {
		return waits("Fig. 15 — wait time (median) until ready after create + scale up", services, *n, *seed, false)
	})
	run("fig16", func() error { return fig16(services, *warm, *seed) })
	run("access", func() error { return accessOverhead(*seed) })
	run("trace", func() error { return traceReplay(*seed) })
	run("faults", func() error { return faultReplay(*seed) })
	run("scale", func() error { return scale(*seed) })

	// chaos and load are deliberately NOT part of -exp all: the figure
	// outputs must stay byte-identical run to run, so the chaos replay
	// runs only when asked for by name, and the load experiment (whose
	// wall-clock throughput line depends on the host) likewise.
	if *exp == "chaos" {
		if err := chaosReplay(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "load" {
		if err := load(*flows, *rate, *revisits, *seed, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "mobility" {
		if err := mobilityExp(*handovers, *rate, *migrate, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: mobility: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// experiments lists every valid -exp value, in display order. chaos,
// load, and mobility are deliberately NOT part of "all": the -exp all
// output must stay byte-identical run to run, and those three carry
// their own flags (or, for load, host-dependent stderr lines).
var experiments = []string{
	"tableI", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"access", "trace", "faults", "scale", "chaos", "load", "mobility", "all",
}

func expNames() string { return strings.Join(experiments, "|") }

func knownExp(name string) bool {
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

// mobilityExp runs the client-mobility experiment: persistent sessions
// on mobile clients, a seeded random walk hopping them between the two
// gNBs, make-before-break flow re-steering at each hop. Every number in
// the table is virtual-time deterministic — byte-identical for a given
// seed regardless of -parallel, -sched, or -no-fastpath.
func mobilityExp(handovers int, rate float64, migrate bool, seed int64) error {
	cfg := testbed.MobilityConfig{Handovers: handovers, Migrate: migrate, Seed: seed}
	if rate > 0 {
		cfg.Interval = time.Duration(float64(time.Second) / rate)
	}
	res, err := testbed.RunMobility(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Client mobility — %d sessions, %d handovers, make-before-break re-steering (seed %d)\n",
		res.Sessions, res.Config.Handovers, seed)
	t := metrics.NewTable("", "metric", "value")
	t.AddRow("handovers", fmt.Sprintf("%d", res.Stats.Handovers))
	t.AddRow("re-steered flows", fmt.Sprintf("%d", res.Stats.ReSteeredFlows))
	t.AddRow("migrated instances", fmt.Sprintf("%d", res.Stats.MigratedInstances))
	t.AddRow("continuity breaks", fmt.Sprintf("%d", res.Stats.ContinuityBreaks))
	t.AddRow("session rounds verified", fmt.Sprintf("%d", res.Rounds))
	t.AddRow("verified bytes", fmt.Sprintf("%d", res.VerifiedBytes))
	t.AddRow("session checksum", fmt.Sprintf("%016x", res.Checksum))
	t.AddRow("handover p50", metrics.FmtMS(res.HandoverLat.Median()))
	t.AddRow("handover p99", metrics.FmtMS(res.HandoverLat.Percentile(99)))
	t.AddRow("post-run audit delta", fmt.Sprintf("%d/%d", res.AuditA, res.AuditB))
	t.AddRow("packet-ins", fmt.Sprintf("%d", res.Stats.PacketIns))
	t.AddRow("memory hits", fmt.Sprintf("%d", res.Stats.MemoryHits))
	t.AddRow("flows installed", fmt.Sprintf("%d", res.Stats.FlowsInstalled))
	emit(t)
	if res.Stats.ContinuityBreaks == 0 {
		fmt.Println("every session survived every handover: zero continuity breaks, tables converged")
	}
	return nil
}

// writeProfile dumps one named runtime profile (block, mutex) on exit.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgesim: -%sprofile: %v\n", name, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "edgesim: -%sprofile: %v\n", name, err)
		os.Exit(1)
	}
}

// load runs the open-loop Poisson/Zipf arrival engine: -flows distinct
// synthetic clients at -rate arrivals/s against pre-deployed services.
// The table on stdout is deterministic for a given seed (and identical
// under -sched wheel and -sched heap); the wall-clock throughput and
// peak-heap lines go to stderr because they are the only host-dependent
// numbers. Dispatch latency is recorded in the streaming histogram, so
// a multi-million-arrival run costs constant telemetry memory and the
// peak-heap figure tracks the system under test, not the measurement.
//
// With -shards > 1 the run is service-partitioned across that many
// clocks (see testbed.LoadConfig.Shards). Everything on stdout —
// including the fingerprint row — is byte-identical to -shards 1; the
// shard count itself goes to stderr with the other host-dependent
// lines, which is what lets `make shard-diff` diff stdout directly.
func load(flows int, rate, revisits float64, seed int64, shards int) error {
	res, err := testbed.RunLoad(testbed.LoadConfig{Flows: flows, Rate: rate, Revisits: revisits, Seed: seed, Shards: shards})
	if err != nil {
		return err
	}
	cfg := res.Config
	fmt.Printf("Open-loop load — %d flows, %.0f arrivals/s Poisson, %d services (Zipf s=%.1f), seed %d\n",
		cfg.Flows, cfg.Rate, cfg.Services, cfg.ZipfS, seed)
	t := metrics.NewTable("", "metric", "value")
	t.AddRow("fingerprint", res.Fingerprint())
	t.AddRow("arrivals", fmt.Sprintf("%d", res.Arrivals))
	t.AddRow("virtual span", fmt.Sprintf("%v", res.VirtualDuration.Round(time.Millisecond)))
	t.AddRow("punts answered", fmt.Sprintf("%d", res.Punts))
	t.AddRow("dispatch p50", metrics.FmtMS(res.Dispatch.Median()))
	t.AddRow("dispatch p99", metrics.FmtMS(res.Dispatch.Percentile(99)))
	t.AddRow("packet-ins", fmt.Sprintf("%d", res.Stats.PacketIns))
	t.AddRow("memory hits", fmt.Sprintf("%d", res.Stats.MemoryHits))
	t.AddRow("dispatches", fmt.Sprintf("%d", res.Stats.ScheduleCalls))
	t.AddRow("flows installed", fmt.Sprintf("%d", res.Stats.FlowsInstalled))
	t.AddRow("cloud forwards", fmt.Sprintf("%d", res.Stats.CloudForwards))
	t.AddRow("replies absorbed", fmt.Sprintf("%d", res.DroppedReplies))
	for i, n := range res.ServiceArrivals {
		t.AddRow(fmt.Sprintf("arrivals svc %d", i), fmt.Sprintf("%d", n))
	}
	emit(t)
	fmt.Fprintf(os.Stderr, "load: %d arrivals in %v wall (%.0f arrivals/s, %d shard(s))\n",
		res.Arrivals, res.Wall.Round(time.Millisecond), float64(res.Arrivals)/res.Wall.Seconds(), cfg.Shards)
	fmt.Fprintf(os.Stderr, "load: peak heap %.1f MiB\n", float64(res.PeakHeap)/(1<<20))
	return nil
}

// chaosReplay replays the trace under the default network chaos
// scenario — flapping access links, a cloud-router crash, a switch
// reboot, and a lossy OpenFlow channel — then judges the run against
// the chaos invariants: every request classified, zero leaked packets,
// flow tables converged after one post-chaos audit. A violation is a
// non-zero exit, which is what `make chaos-check` keys on.
func chaosReplay(seed int64) error {
	cfg := trace.DefaultBigFlows()
	cfg.Seed = seed
	res, err := testbed.RunChaos("nginx", cfg, testbed.DefaultChaosConfig(seed), seed)
	if err != nil {
		return err
	}
	fmt.Printf("Network & control-channel chaos — %d requests under link flaps, router crash, switch restart, lossy OpenFlow channel (seed %d)\n",
		res.Requests, seed)
	t := metrics.NewTable("", "metric", "value")
	t.AddRow("completed requests", fmt.Sprintf("%d", res.Completed))
	t.AddRow("classified failures", fmt.Sprintf("%d", res.Failed))
	t.AddRow("unclassified failures", fmt.Sprintf("%d", res.Unclassified))
	t.AddRow("median", metrics.FmtMS(res.Totals.Median()))
	t.AddRow("p99", metrics.FmtMS(res.Totals.Percentile(99)))
	t.AddRow("control-channel drops", fmt.Sprintf("%d", res.Stats.ChannelDrops))
	t.AddRow("degraded to cloud", fmt.Sprintf("%d", res.Stats.DegradedToCloud))
	t.AddRow("resync runs", fmt.Sprintf("%d", res.Stats.ResyncRuns))
	t.AddRow("reinstalled flows", fmt.Sprintf("%d", res.Stats.ReinstalledFlows))
	t.AddRow("orphan flows removed", fmt.Sprintf("%d", res.Stats.OrphanFlowsRemoved))
	t.AddRow("leaked packets", fmt.Sprintf("%d", res.LeakedPackets))
	t.AddRow("tables converged", fmt.Sprintf("%v (residual diff %d)", res.Converged, res.ConvergeDelta))
	emit(t)
	if !res.InvariantsOK() {
		return fmt.Errorf("invariant violation: unclassified=%d leaked=%d converged=%v",
			res.Unclassified, res.LeakedPackets, res.Converged)
	}
	fmt.Println("invariants held: every request classified, zero packet leaks, flow tables converged")
	return nil
}

// scale reports control-plane dispatch latency under packet-in storms
// of growing client populations: a cold wave (FlowMemory misses riding
// the candidate-snapshot cache) and a warm wave (FlowMemory hits).
func scale(seed int64) error {
	t := metrics.NewTable("Control-plane scale — nginx pre-deployed, per-client dispatch latency (median)",
		"clients", "cold dispatch", "memory hit", "candidate hits", "candidate misses")
	for _, clients := range []int{20, 100, 250} {
		res, err := testbed.RunScale("nginx", clients, seed)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", clients),
			metrics.FmtMS(res.Cold.Median()),
			metrics.FmtMS(res.Warm.Median()),
			fmt.Sprintf("%d", res.Stats.CandidateHits),
			fmt.Sprintf("%d", res.Stats.CandidateMisses))
	}
	emit(t)
	fmt.Println("cold dispatch scales with one candidate gathering per TTL window, not one per client")
	return nil
}

// accessOverhead reports the cost of the transparent-access mechanism
// itself — the evaluation focus of the original 2019 paper.
func accessOverhead(seed int64) error {
	res, err := testbed.RunAccessOverhead("asm", 20, seed)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Transparent access overhead (asm, instance running; median)",
		"path", "time_total", "what it pays")
	t.AddRow("direct to instance", metrics.FmtMS(res.Direct.Median()), "baseline, no SDN")
	t.AddRow("installed flows", metrics.FmtMS(res.WarmFlow.Median()), "line-rate rewriting only")
	t.AddRow("FlowMemory hit", metrics.FmtMS(res.MemoryHit.Median()), "packet-in, no scheduling")
	t.AddRow("cold dispatch", metrics.FmtMS(res.ColdDispatch.Median()), "packet-in + scheduler")
	emit(t)
	return nil
}

func fig9(seed int64) error {
	cfg := trace.DefaultBigFlows()
	cfg.Seed = seed
	res, err := testbed.RunWorkload(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 9 — %d requests to %d edge services over %v (recovered from synthetic bigFlows pcap)\n",
		res.Trace.TotalRequests(), len(res.Trace.Counts), cfg.Duration)
	fmt.Println(metrics.Histogram("requests per second", res.RequestsPerSec, time.Second, 30))
	return nil
}

func fig10(seed int64) error {
	cfg := trace.DefaultBigFlows()
	cfg.Seed = seed
	res, err := testbed.RunWorkload(cfg)
	if err != nil {
		return err
	}
	max := 0
	for _, v := range res.DeploymentsPerSec {
		if v > max {
			max = v
		}
	}
	fmt.Printf("Fig. 10 — %d edge service deployments over %v (burst: up to %d per second)\n",
		len(res.Trace.Counts), cfg.Duration, max)
	fmt.Println(metrics.Histogram("deployments per second", res.DeploymentsPerSec, time.Second, 30))
	return nil
}

var phaseKinds = []cluster.Kind{cluster.Docker, cluster.Kubernetes}

// phaseCells runs one scale-up (or create+scale-up) replication per
// (service, kind) cell across the worker pool and returns them indexed
// [service][kind].
func phaseCells(services []string, n int, seed int64, scaleOnly bool) ([][]*testbed.PhaseResult, error) {
	flat, err := testbed.RunParallel(len(services)*len(phaseKinds), workers,
		func(i int) (*testbed.PhaseResult, error) {
			key, kind := services[i/len(phaseKinds)], phaseKinds[i%len(phaseKinds)]
			if scaleOnly {
				return testbed.RunScaleUp(key, kind, n, seed)
			}
			return testbed.RunCreateScaleUp(key, kind, n, seed)
		})
	if err != nil {
		return nil, err
	}
	cells := make([][]*testbed.PhaseResult, len(services))
	for si := range services {
		cells[si] = flat[si*len(phaseKinds) : (si+1)*len(phaseKinds)]
	}
	return cells, nil
}

func phases(title string, services []string, n int, seed int64, scaleOnly bool) error {
	cells, err := phaseCells(services, n, seed, scaleOnly)
	if err != nil {
		return err
	}
	t := metrics.NewTable(title, "Service", "Docker", "K8s", "paper says")
	for si, key := range services {
		row := []string{key}
		for ki, kind := range phaseKinds {
			res := cells[si][ki]
			if res.Errors > 0 {
				return fmt.Errorf("%s on %s: %d failed deployments", key, kind, res.Errors)
			}
			row = append(row, metrics.FmtMS(res.Totals.Median()))
		}
		row = append(row, paperPhaseNote(key, scaleOnly))
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

func paperPhaseNote(key string, scaleOnly bool) string {
	base := map[string]string{
		"asm":     "Docker <1 s, K8s ≈3 s",
		"nginx":   "Docker <1 s, K8s ≈3 s",
		"resnet":  "slowest; wait >¼ of total",
		"nginxpy": "two containers, Docker <1 s",
	}[key]
	if !scaleOnly && key != "resnet" {
		base += "; create adds ≈100 ms"
	}
	return base
}

func fig13(services []string, seed int64) error {
	t := metrics.NewTable("Fig. 13 — total time to pull the service images onto the EGS",
		"Service", "Docker Hub / GCR", "private registry", "saved")
	pulls, err := testbed.RunParallel(len(services)*2, workers,
		func(i int) (*testbed.PullResult, error) {
			return testbed.RunPull(services[i/2], i%2 == 1, 10, seed)
		})
	if err != nil {
		return err
	}
	for si, key := range services {
		pub, priv := pulls[si*2], pulls[si*2+1]
		t.AddRow(key,
			fmt.Sprintf("%s (%s)", metrics.FmtMS(pub.Times.Median()), pub.Registry),
			metrics.FmtMS(priv.Times.Median()),
			metrics.FmtMS(pub.Times.Median()-priv.Times.Median()))
	}
	emit(t)
	fmt.Println("paper: private registry improves pulls by about 1.5–2 s")
	return nil
}

func waits(title string, services []string, n int, seed int64, scaleOnly bool) error {
	cells, err := phaseCells(services, n, seed, scaleOnly)
	if err != nil {
		return err
	}
	t := metrics.NewTable(title, "Service", "Docker", "K8s")
	for si, key := range services {
		row := []string{key}
		for ki := range phaseKinds {
			row = append(row, metrics.FmtMS(cells[si][ki].Waits.Median()))
		}
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

func fig16(services []string, warm int, seed int64) error {
	t := metrics.NewTable("Fig. 16 — total time (median) for requests with the instance already running",
		"Service", "Docker", "K8s", "paper says")
	notes := map[string]string{
		"asm":     "≈1 ms",
		"nginx":   "≈1 ms",
		"resnet":  "significantly longer (inference)",
		"nginxpy": "≈1 ms",
	}
	warms, err := testbed.RunParallel(len(services)*len(phaseKinds), workers,
		func(i int) (*testbed.WarmResult, error) {
			return testbed.RunWarm(services[i/len(phaseKinds)], phaseKinds[i%len(phaseKinds)], warm, seed)
		})
	if err != nil {
		return err
	}
	for si, key := range services {
		row := []string{key}
		for ki := range phaseKinds {
			row = append(row, metrics.FmtMS(warms[si*len(phaseKinds)+ki].Totals.Median()))
		}
		row = append(row, notes[key])
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

// faultReplay replays the trace twice on the same two-edge topology —
// once fault-free, once with 10 % pull/scale-up failures plus a 30 s
// near-edge outage — and reports what the resilience machinery paid to
// keep every client request alive.
func faultReplay(seed int64) error {
	cfg := trace.DefaultBigFlows()
	cfg.Seed = seed
	base, err := testbed.RunFaultReplay("nginx", cfg, faultinject.Config{Seed: seed}, seed)
	if err != nil {
		return err
	}
	faulted, err := testbed.RunFaultReplay("nginx", cfg, testbed.DefaultFaultConfig(seed), seed)
	if err != nil {
		return err
	}
	fmt.Printf("Fault injection — %d requests, 10%% pull/scale-up failures, one 30 s edge outage (seed %d)\n",
		faulted.Requests, seed)
	t := metrics.NewTable("", "metric", "fault-free", "faulted")
	t.AddRow("failed requests", fmt.Sprintf("%d", base.Errors), fmt.Sprintf("%d", faulted.Errors))
	t.AddRow("median", metrics.FmtMS(base.Totals.Median()), metrics.FmtMS(faulted.Totals.Median()))
	t.AddRow("p99", metrics.FmtMS(base.Totals.Percentile(99)), metrics.FmtMS(faulted.Totals.Percentile(99)))
	t.AddRow("max", metrics.FmtMS(base.Totals.Max()), metrics.FmtMS(faulted.Totals.Max()))
	for _, row := range []struct {
		name string
		a, b int64
	}{
		{"injected pull failures", base.Injected.PullFailures, faulted.Injected.PullFailures},
		{"injected scale-up failures", base.Injected.ScaleUpFailures, faulted.Injected.ScaleUpFailures},
		{"injected outage errors", base.Injected.OutageErrors, faulted.Injected.OutageErrors},
		{"retries", base.Stats.Retries, faulted.Stats.Retries},
		{"failovers", base.Stats.Failovers, faulted.Stats.Failovers},
		{"breaker trips", base.Stats.BreakerTrips, faulted.Stats.BreakerTrips},
		{"breaker recoveries", base.Stats.BreakerRecoveries, faulted.Stats.BreakerRecoveries},
		{"health evictions", base.Stats.HealthEvictions, faulted.Stats.HealthEvictions},
		{"cloud forwards", base.Stats.CloudForwards, faulted.Stats.CloudForwards},
	} {
		t.AddRow(row.name, fmt.Sprintf("%d", row.a), fmt.Sprintf("%d", row.b))
	}
	emit(t)
	if faulted.Errors == 0 {
		fmt.Println("every request completed: faults were absorbed by retry, failover, and cloud fallback")
	}
	return nil
}

func traceReplay(seed int64) error {
	cfg := trace.DefaultBigFlows()
	cfg.Seed = seed
	res, err := testbed.RunTraceReplay("nginx", cluster.Docker, cfg, seed)
	if err != nil {
		return err
	}
	fmt.Printf("Full trace replay — %d requests to %d nginx services on Docker\n",
		res.Totals.Len(), cfg.HotServices)
	t := metrics.NewTable("", "metric", "value")
	t.AddRow("median", metrics.FmtMS(res.Totals.Median()))
	t.AddRow("p90", metrics.FmtMS(res.Totals.Percentile(90)))
	t.AddRow("p99", metrics.FmtMS(res.Totals.Percentile(99)))
	t.AddRow("max", metrics.FmtMS(res.Totals.Max()))
	t.AddRow("packet-ins", fmt.Sprintf("%d", res.Stats.PacketIns))
	t.AddRow("deployments (waiting)", fmt.Sprintf("%d", res.Stats.DeploysWaiting))
	t.AddRow("scale-ups", fmt.Sprintf("%d", res.Stats.ScaleUps))
	t.AddRow("memory hits", fmt.Sprintf("%d", res.Stats.MemoryHits))
	emit(t)
	return nil
}
