// Command tracegen synthesizes the bigFlows-like workload capture as a
// real .pcap file and verifies that the paper's extraction methodology
// (TCP conversations → port 80 → destinations with ≥20 requests)
// recovers exactly the intended workload from it.
//
//	tracegen -out bigflows.pcap
//	tracegen -out bigflows.pcap -services 42 -requests 1708
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	out := flag.String("out", "bigflows-synth.pcap", "output capture file")
	services := flag.Int("services", 42, "hot edge services (≥20 requests each)")
	requests := flag.Int("requests", 1708, "total requests to hot services")
	duration := flag.Duration("duration", 5*time.Minute, "capture duration")
	seed := flag.Int64("seed", 7, "generation seed")
	quiet := flag.Bool("q", false, "suppress histograms")
	flag.Parse()

	cfg := trace.DefaultBigFlows()
	cfg.HotServices = *services
	cfg.TotalRequests = *requests
	cfg.Duration = *duration
	cfg.Seed = *seed

	tr := trace.Generate(cfg)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WritePcap(f, vclock.Epoch); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())

	// Verify: apply the paper's filter to the file we just wrote.
	in, err := os.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	back, err := trace.FromPcap(in, cfg.Duration, cfg.MinPerService)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction recovers: %d services, %d requests (want %d / %d)\n",
		len(back.Counts), back.TotalRequests(), cfg.HotServices, cfg.TotalRequests)
	if len(back.Counts) != cfg.HotServices || back.TotalRequests() != cfg.TotalRequests {
		log.Fatal("verification FAILED: extraction does not match generation")
	}
	fmt.Println("verification OK")

	if !*quiet {
		fmt.Println()
		fmt.Println(metrics.Histogram("requests per second (Fig. 9)", back.RequestsPerSecond(), time.Second, 25))
		fmt.Println(metrics.Histogram("deployments per second (Fig. 10)", back.DeploymentsPerSecond(), time.Second, 25))
	}
}
