// Command edgectl walks through the transparent-edge system step by
// step on a live emulated testbed: registration and annotation,
// interception, on-demand deployment with and without waiting, flow
// inspection, idle scale-down, and redeployment. It is the guided-tour
// counterpart to edgesim's batch experiments.
//
//	edgectl                    # full walkthrough
//	edgectl -scheduler hybrid  # with the §VII hybrid Global Scheduler
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/pcap"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func main() {
	scheduler := flag.String("scheduler", core.SchedulerProximity,
		fmt.Sprintf("global scheduler %v", core.SchedulerNames()))
	seed := flag.Int64("seed", 1, "simulation seed")
	capture := flag.String("capture", "", "write all emulated traffic to this .pcap file")
	flag.Parse()

	clk := vclock.New()
	clk.Run(func() {
		step := stepper()

		step("building the C³ testbed (Fig. 8)")
		tb, err := testbed.New(clk, testbed.Options{
			WithDocker:      true,
			WithKube:        true,
			WithFarEdge:     true,
			GlobalScheduler: *scheduler,
			SwitchFlowIdle:  5 * time.Second,
			MemoryIdle:      20 * time.Second,
			ScaleDownIdle:   true,
			Seed:            *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  clusters: edge-docker (1 ms), edge-k8s (1.2 ms), edge-far (8 ms), cloud (25 ms)\n")
		fmt.Printf("  global scheduler: %s\n", *scheduler)

		var liveCapture *pcap.LiveCapture
		if *capture != "" {
			f, err := os.Create(*capture)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			liveCapture = pcap.NewLiveCapture(f)
			tb.Net.SetCapture(liveCapture.Tap)
			defer func() {
				fmt.Printf("\ncaptured %d packets to %s\n", liveCapture.Packets(), *capture)
			}()
		}

		step("registering the four Table I services")
		var handles []*testbed.ServiceHandle
		for i, key := range []string{"asm", "nginx", "resnet", "nginxpy"} {
			svc, _ := catalog.ByKey(key)
			h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(i))
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, h)
			fmt.Printf("  %-8s → %s  (%s, %d layers)\n", key, h.Addr, h.Svc.Name, svc.TotalLayers())
		}

		step("switch state: one intercept rule per registered address")
		for _, f := range tb.Switch.Flows() {
			fmt.Printf("  prio=%-3d %-40s cookie=%d\n", f.Priority, f.Match.String(), f.Cookie)
		}

		step("pre-pulling images to the EGS (Pull phase)")
		for _, h := range handles {
			start := clk.Now()
			if err := tb.PrePull(h, "edge-docker"); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s pulled in %s\n", h.Catalog.Key, metrics.FmtMS(clk.Since(start)))
		}

		step("first requests: on-demand deployment with waiting")
		for i, h := range handles {
			res, err := tb.Request(i, h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s first request: %8s   (connect %s)\n",
				h.Catalog.Key, metrics.FmtMS(res.Total), metrics.FmtMS(res.Connect))
		}

		step("second requests ride the installed flows")
		for i, h := range handles {
			res, err := tb.Request(i, h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s warm request:  %8s\n", h.Catalog.Key, metrics.FmtMS(res.Total))
		}

		step("flow table after redirects (per-client rewrite pairs)")
		flows := tb.Switch.Flows()
		shown := 0
		for _, f := range flows {
			if f.Priority > 10 && shown < 6 {
				fmt.Printf("  prio=%-3d %-40s pkts=%d\n", f.Priority, f.Match.String(), f.Packets)
				shown++
			}
		}
		fmt.Printf("  (%d flows total; FlowMemory holds %d entries)\n",
			len(flows), tb.Controller.FlowMemory().Len())

		step("going idle: low switch timeouts expire, then memory, then scale-down")
		clk.Sleep(90 * time.Second)
		running := 0
		for _, h := range handles {
			running += len(tb.Docker.Instances(h.Svc.Name))
		}
		st := tb.Controller.Stats()
		fmt.Printf("  instances still running: %d; scale-downs: %d; flow-removed msgs: %d\n",
			running, st.ScaleDowns, st.FlowRemovedMsgs)

		step("a returning client triggers redeployment on demand")
		res, err := tb.Request(0, handles[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  nginx after idle scale-down: %s (scale-up only — containers still created)\n",
			metrics.FmtMS(res.Total))

		step("controller statistics")
		st = tb.Controller.Stats()
		t := metrics.NewTable("", "counter", "value")
		t.AddRow("packet-ins", fmt.Sprint(st.PacketIns))
		t.AddRow("schedule calls", fmt.Sprint(st.ScheduleCalls))
		t.AddRow("memory hits", fmt.Sprint(st.MemoryHits))
		t.AddRow("deployments (waiting)", fmt.Sprint(st.DeploysWaiting))
		t.AddRow("deployments (no wait)", fmt.Sprint(st.DeploysNoWait))
		t.AddRow("cloud forwards", fmt.Sprint(st.CloudForwards))
		t.AddRow("pulls / creates / scale-ups", fmt.Sprintf("%d / %d / %d", st.Pulls, st.Creates, st.ScaleUps))
		t.AddRow("scale-downs", fmt.Sprint(st.ScaleDowns))
		fmt.Println(t)
	})
}

func stepper() func(string) {
	n := 0
	return func(title string) {
		n++
		fmt.Printf("\n[%d] %s\n", n, title)
	}
}
