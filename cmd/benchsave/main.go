// Command benchsave archives a benchmark run: it reads `go test -bench`
// output on stdin, parses the result lines, and writes them — together
// with the benchstat-compatible raw text — to the next free
// BENCH_<n>.json in the current directory. Used by `make bench-save` and
// `make bench-sim-save` to keep before/after records of performance work.
// An explicit output path may be given as the sole argument, pinning the
// archive name instead of taking the next free slot:
//
//	go test -bench=. -benchtime=2s -run='^$' ./internal/core/ | go run ./cmd/benchsave
//	go test -bench=. -benchtime=2s -run='^$' ./internal/netem/ | go run ./cmd/benchsave BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// resultLine matches one benchmark result, e.g.
//
//	BenchmarkPacketInThroughput-4   303165   12592 ns/op   5 allocs/op
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op", and any
	// custom b.ReportMetric units such as "sim-ms-median".
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the archived run. GOMAXPROCS and NumCPU pin down the
// parallelism the numbers were taken under — a sharded-engine speedup
// is meaningless without them (per-benchmark shard counts ride in
// Metrics as a "shards" unit from b.ReportMetric).
type Record struct {
	Created    string   `json:"created"`
	GoVersion  string   `json:"go"`
	Host       string   `json:"host,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"numcpu"`
	Benchmarks []Result `json:"benchmarks"`
	// Raw preserves the exact benchmark output for benchstat.
	Raw []string `json:"raw"`
}

func main() {
	rec := Record{
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if h, err := os.Hostname(); err == nil {
		rec.Host = h
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		rec.Raw = append(rec.Raw, line)
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: read: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsave: no benchmark results on stdin")
		os.Exit(1)
	}
	path := nextPath()
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchsave: %d benchmark(s) → %s\n", len(rec.Benchmarks), path)
}

// nextPath returns the first unused BENCH_<n>.json.
func nextPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
