// Package transparentedge is a from-scratch Go reproduction of
// "Transparent Access to 5G Edge Computing Services" and its follow-up,
// "Distributed On-Demand Deployment for Transparent Access to 5G Edge
// Computing Services" (Hammer & Hellwagner, Alpen-Adria-Universität
// Klagenfurt): an SDN controller that transparently redirects client
// requests to edge clusters and deploys containerized services on
// demand, together with every substrate the evaluation needs — an
// OpenFlow switch, a network emulator, a Docker engine, a Kubernetes
// control plane, a containerd runtime, image registries, and the
// bigFlows-derived workload.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitution map, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
package transparentedge
