package transparentedge

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design decisions DESIGN.md calls out. Each
// iteration runs a complete experiment on the virtual clock; the
// reported custom metrics carry the *simulated* medians (sim-ms), which
// are the reproduced quantities — wall-clock ns/op only measures the
// emulator itself.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/testbed"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// benchDeployments keeps per-iteration experiments small; the medians
// are insensitive to the count (the paper uses 42).
const benchDeployments = 6

var benchServices = []string{"asm", "nginx", "resnet", "nginxpy"}

var benchKinds = []struct {
	name string
	kind cluster.Kind
}{
	{"docker", cluster.Docker},
	{"k8s", cluster.Kubernetes},
}

func simMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTableI regenerates the service catalog table.
func BenchmarkTableI(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = testbed.TableI().String()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFig09Workload regenerates the request distribution: 1708
// requests to 42 services recovered from the synthesized capture.
func BenchmarkFig09Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.RunWorkload(trace.DefaultBigFlows())
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace.TotalRequests() != 1708 || len(res.Trace.Counts) != 42 {
			b.Fatalf("workload = %d requests / %d services", res.Trace.TotalRequests(), len(res.Trace.Counts))
		}
	}
}

// BenchmarkFig10DeploymentBurst regenerates the deployment distribution.
func BenchmarkFig10DeploymentBurst(b *testing.B) {
	burst := 0
	for i := 0; i < b.N; i++ {
		res, err := testbed.RunWorkload(trace.DefaultBigFlows())
		if err != nil {
			b.Fatal(err)
		}
		burst = 0
		for _, n := range res.DeploymentsPerSec {
			if n > burst {
				burst = n
			}
		}
	}
	b.ReportMetric(float64(burst), "max-deploys/s")
}

// BenchmarkFig11ScaleUp regenerates the scale-up medians per service
// and cluster kind.
func BenchmarkFig11ScaleUp(b *testing.B) {
	for _, key := range benchServices {
		for _, k := range benchKinds {
			b.Run(key+"/"+k.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunScaleUp(key, k.kind, benchDeployments, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if res.Errors > 0 {
						b.Fatalf("%d deployment errors", res.Errors)
					}
					med = res.Totals.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkFig12CreateScaleUp regenerates the create+scale-up medians.
func BenchmarkFig12CreateScaleUp(b *testing.B) {
	for _, key := range benchServices {
		for _, k := range benchKinds {
			b.Run(key+"/"+k.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunCreateScaleUp(key, k.kind, benchDeployments, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					med = res.Totals.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkFig13Pull regenerates the pull times from the WAN registries
// vs the private registry.
func BenchmarkFig13Pull(b *testing.B) {
	for _, key := range benchServices {
		for _, src := range []struct {
			name    string
			private bool
		}{{"wan", false}, {"private", true}} {
			b.Run(key+"/"+src.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunPull(key, src.private, 5, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					med = res.Times.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkFig14Wait regenerates the wait-until-ready medians after
// scale-up.
func BenchmarkFig14Wait(b *testing.B) {
	for _, key := range benchServices {
		for _, k := range benchKinds {
			b.Run(key+"/"+k.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunScaleUp(key, k.kind, benchDeployments, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					med = res.Waits.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkFig15WaitCreate regenerates the wait-until-ready medians
// after create+scale-up.
func BenchmarkFig15WaitCreate(b *testing.B) {
	for _, key := range benchServices {
		for _, k := range benchKinds {
			b.Run(key+"/"+k.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunCreateScaleUp(key, k.kind, benchDeployments, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					med = res.Waits.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkFig16Warm regenerates the warm-path request medians.
func BenchmarkFig16Warm(b *testing.B) {
	for _, key := range benchServices {
		for _, k := range benchKinds {
			b.Run(key+"/"+k.name, func(b *testing.B) {
				var med time.Duration
				for i := 0; i < b.N; i++ {
					res, err := testbed.RunWarm(key, k.kind, 20, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					med = res.Totals.Median()
				}
				b.ReportMetric(simMS(med), "sim-ms-median")
			})
		}
	}
}

// BenchmarkTransparentAccessOverhead measures the redirection mechanism
// itself — the original 2019 paper's evaluation focus: direct path vs
// installed flows vs FlowMemory hit vs full cold dispatch, all with the
// instance already running.
func BenchmarkTransparentAccessOverhead(b *testing.B) {
	var res *testbed.AccessOverheadResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = testbed.RunAccessOverhead("asm", 10, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simMS(res.Direct.Median()), "sim-ms-direct")
	b.ReportMetric(simMS(res.WarmFlow.Median()), "sim-ms-warm-flow")
	b.ReportMetric(simMS(res.MemoryHit.Median()), "sim-ms-memory-hit")
	b.ReportMetric(simMS(res.ColdDispatch.Median()), "sim-ms-cold-dispatch")
}

// BenchmarkScaleDispatch runs the control-plane scale experiment: a
// packet-in storm from a large client population against one
// pre-deployed service — a cold wave of FlowMemory misses sharing one
// candidate snapshot, then a warm wave of FlowMemory hits.
func BenchmarkScaleDispatch(b *testing.B) {
	for _, clients := range []int{20, 100} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var res *testbed.ScaleResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = testbed.RunScale("nginx", clients, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(simMS(res.Cold.Median()), "sim-ms-cold")
			b.ReportMetric(simMS(res.Warm.Median()), "sim-ms-warm")
			b.ReportMetric(float64(res.Stats.CandidateHits), "cand-hits")
			b.ReportMetric(float64(res.Stats.CandidateMisses), "cand-misses")
		})
	}
}

// BenchmarkOpenLoopLoad drives the open-loop load engine at the 250k-
// concurrent-flow scale (enlarged from 100k once streaming telemetry
// made measurement O(1) per event): a Poisson arrival process over
// Zipf-assigned services via the O(1) alias sampler, every flow holding
// FlowMemory state and a redirect pair with idle timers — the
// pending-timer population the hierarchical timing wheel serves, with
// dispatch latency streamed into a constant-memory histogram. One
// iteration is one complete run (cold wave plus revisits); allocs/op is
// gated in CI (make bench-load-guard).
func BenchmarkOpenLoopLoad(b *testing.B) {
	var res *testbed.LoadResult
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err = testbed.RunLoad(testbed.LoadConfig{
			Flows: 250_000,
			Rate:  100_000,
			Seed:  int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Arrivals), "arrivals/op")
	b.ReportMetric(float64(res.Arrivals)/res.Wall.Seconds(), "arrivals/s-wall")
	b.ReportMetric(simMS(res.Dispatch.Median()), "sim-ms-dispatch-p50")
	b.ReportMetric(float64(res.Punts), "punts")
	b.ReportMetric(float64(res.PeakHeap)/(1<<20), "peak-heap-MiB")
}

// BenchmarkOpenLoopLoadSharded is the sharded twin of
// BenchmarkOpenLoopLoad: the identical 250k-flow run service-
// partitioned across four clocks (testbed.LoadConfig.Shards). Its
// merged result carries the same fingerprint as the sequential run —
// TestShardFingerprintInvariance gates that — so the delta between the
// two benchmarks is pure engine parallelism. Read it with the archived
// gomaxprocs/numcpu fields: on a single-core host the shards time-slice
// one CPU and the ratio measures overhead, not speedup.
func BenchmarkOpenLoopLoadSharded(b *testing.B) {
	var res *testbed.LoadResult
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err = testbed.RunLoad(testbed.LoadConfig{
			Flows:  250_000,
			Rate:   100_000,
			Seed:   int64(i + 1),
			Shards: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(4, "shards")
	b.ReportMetric(float64(res.Arrivals), "arrivals/op")
	b.ReportMetric(float64(res.Arrivals)/res.Wall.Seconds(), "arrivals/s-wall")
	b.ReportMetric(simMS(res.Dispatch.Median()), "sim-ms-dispatch-p50")
	b.ReportMetric(float64(res.Punts), "punts")
	b.ReportMetric(float64(res.PeakHeap)/(1<<20), "peak-heap-MiB")
}

// BenchmarkHandover measures the steady-churn handover path: one mobile
// client with a live session ping-pongs between the two gNBs, each
// iteration performing one complete re-home (physical link move,
// make-before-break flow re-steering, route convergence) followed by a
// verified request/response round on the surviving connection — so an
// iteration that broke session continuity fails the benchmark instead
// of mis-measuring it. allocs/op covers the full handover (Rehome's
// link rebuild, the bundle exchanges, the FlowMemory snapshot) and is
// gated in CI (make bench-load-guard).
func BenchmarkHandover(b *testing.B) {
	b.ReportAllocs()
	var p50 time.Duration
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			TwoZones:       true,
			MobileClients:  1,
			SwitchFlowIdle: time.Hour,
			MemoryIdle:     time.Hour,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		asm, _ := catalog.ByKey("asm")
		h, err := tb.RegisterCatalogService(asm, trace.ServiceAddr(0))
		if err != nil {
			b.Fatal(err)
		}
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Controller.PreDeploy(h.Addr, "edge-docker"); err != nil {
			b.Fatal(err)
		}
		conn, err := tb.MobileClient(0).DialTimeout(h.Addr, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		req := []byte("GET / HTTP/1.1\r\n\r\n")
		exchange := func() {
			if err := conn.Send(req); err != nil {
				b.Fatal(err)
			}
			if _, err := conn.RecvTimeout(30 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
		exchange() // installs the redirect flows the handovers re-steer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.RehomeClient(0, i%2 == 0)
			clk.Sleep(time.Second) // let retransmissions settle
			exchange()
		}
		b.StopTimer()
		p50 = tb.Controller.HandoverLatency().Median()
		if n := tb.Controller.Stats().ContinuityBreaks; n != 0 {
			b.Fatalf("%d continuity breaks", n)
		}
	})
	b.ReportMetric(simMS(p50), "sim-ms-handover-p50")
}

// BenchmarkTraceReplay runs a reduced end-to-end replay of the bigFlows
// workload through the complete system.
func BenchmarkTraceReplay(b *testing.B) {
	cfg := trace.DefaultBigFlows()
	cfg.HotServices = 8
	cfg.TotalRequests = 320
	var med, p99 time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := testbed.RunTraceReplay("nginx", cluster.Docker, cfg, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		med, p99 = res.Totals.Median(), res.Totals.Percentile(99)
	}
	b.ReportMetric(simMS(med), "sim-ms-p50")
	b.ReportMetric(simMS(p99), "sim-ms-p99")
}

// BenchmarkFaultRecovery runs the reduced replay fault-free and under
// 10 % pull/scale-up failures, reporting the latency the resilience
// machinery (retry, failover, breaker, cloud fallback) pays to keep
// every request alive.
func BenchmarkFaultRecovery(b *testing.B) {
	cfg := trace.DefaultBigFlows()
	cfg.HotServices = 8
	cfg.TotalRequests = 320
	for _, mode := range []struct {
		name    string
		faulted bool
	}{{"baseline", false}, {"faulted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var med, p99 time.Duration
			var retries, failovers int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				faults := faultinject.Config{Seed: cfg.Seed}
				if mode.faulted {
					faults = testbed.DefaultFaultConfig(cfg.Seed)
				}
				res, err := testbed.RunFaultReplay("nginx", cfg, faults, cfg.Seed)
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors > 0 {
					b.Fatalf("%d of %d requests blackholed", res.Errors, res.Requests)
				}
				med, p99 = res.Totals.Median(), res.Totals.Percentile(99)
				retries, failovers = res.Stats.Retries, res.Stats.Failovers
			}
			b.ReportMetric(simMS(med), "sim-ms-p50")
			b.ReportMetric(simMS(p99), "sim-ms-p99")
			b.ReportMetric(float64(retries), "retries")
			b.ReportMetric(float64(failovers), "failovers")
		})
	}
}

// ablationScenario measures repeated requests from one client with the
// switch flow expiring between them, so every request needs the
// controller — isolating the FlowMemory's effect.
func ablationScenario(b *testing.B, disableMemory bool) (mean time.Duration, scheduleCalls int64) {
	clk := vclock.New()
	clk.Run(func() {
		tb, err := testbed.New(clk, testbed.Options{
			WithDocker:        true,
			SwitchFlowIdle:    time.Second,
			MemoryIdle:        time.Hour,
			DisableFlowMemory: disableMemory,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		nginx, _ := catalog.ByKey("nginx")
		h, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
		if err != nil {
			b.Fatal(err)
		}
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Request(0, h); err != nil { // deploy once
			b.Fatal(err)
		}
		var sum time.Duration
		const reqs = 20
		for i := 0; i < reqs; i++ {
			clk.Sleep(3 * time.Second) // let the switch flow idle out
			r, err := tb.Request(0, h)
			if err != nil {
				b.Fatal(err)
			}
			sum += r.Total
		}
		mean = sum / reqs
		scheduleCalls = tb.Controller.Stats().ScheduleCalls
	})
	return mean, scheduleCalls
}

// BenchmarkAblationFlowMemory quantifies design decision 1 of
// DESIGN.md: with the FlowMemory, expired switch flows are reinstalled
// without consulting the Scheduler.
func BenchmarkAblationFlowMemory(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var mean time.Duration
			var calls int64
			for i := 0; i < b.N; i++ {
				mean, calls = ablationScenario(b, mode.disable)
			}
			b.ReportMetric(simMS(mean), "sim-ms-mean")
			b.ReportMetric(float64(calls), "schedule-calls")
		})
	}
}

// BenchmarkAblationWaitPolicy contrasts holding the first request
// (waiting) against serving it from the cloud while deploying.
func BenchmarkAblationWaitPolicy(b *testing.B) {
	for _, mode := range []struct {
		name string
		wait core.WaitPolicy
	}{{"wait", core.WaitAlways}, {"no-wait-cloud", core.WaitNever}} {
		b.Run(mode.name, func(b *testing.B) {
			var first time.Duration
			for i := 0; i < b.N; i++ {
				clk := vclock.New()
				clk.Run(func() {
					tb, err := testbed.New(clk, testbed.Options{WithDocker: true, Wait: mode.wait, Seed: int64(i + 1)})
					if err != nil {
						b.Fatal(err)
					}
					nginx, _ := catalog.ByKey("nginx")
					h, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
					if err != nil {
						b.Fatal(err)
					}
					tb.PrePull(h, "edge-docker")
					r, err := tb.Request(0, h)
					if err != nil {
						b.Fatal(err)
					}
					first = r.Total
				})
			}
			b.ReportMetric(simMS(first), "sim-ms-first-request")
		})
	}
}

// BenchmarkAblationProbeInterval sweeps the controller's port-probe
// period: finer probing detects readiness earlier at the cost of more
// probe traffic.
func BenchmarkAblationProbeInterval(b *testing.B) {
	for _, probe := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond} {
		b.Run(fmt.Sprintf("%v", probe), func(b *testing.B) {
			var med time.Duration
			for i := 0; i < b.N; i++ {
				var waits []time.Duration
				clk := vclock.New()
				clk.Run(func() {
					tb, err := testbed.New(clk, testbed.Options{
						WithDocker:    true,
						ProbeInterval: probe,
						Seed:          int64(i + 1),
						OnDeploy: func(tr core.DeployTrace) {
							waits = append(waits, tr.Wait)
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					nginx, _ := catalog.ByKey("nginx")
					h, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
					if err != nil {
						b.Fatal(err)
					}
					tb.PrePull(h, "edge-docker")
					if _, err := tb.Request(0, h); err != nil {
						b.Fatal(err)
					}
				})
				if len(waits) > 0 {
					med = waits[0]
				}
			}
			b.ReportMetric(simMS(med), "sim-ms-wait")
		})
	}
}

// BenchmarkAblationHybrid contrasts the §VII hybrid (Docker first,
// Kubernetes later) with a Kubernetes-only deployment for the first
// request.
func BenchmarkAblationHybrid(b *testing.B) {
	for _, mode := range []struct {
		name      string
		scheduler string
		docker    bool
	}{{"hybrid", core.SchedulerHybrid, true}, {"k8s-only", "", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var first time.Duration
			for i := 0; i < b.N; i++ {
				clk := vclock.New()
				clk.Run(func() {
					tb, err := testbed.New(clk, testbed.Options{
						WithDocker:      mode.docker,
						WithKube:        true,
						GlobalScheduler: mode.scheduler,
						Seed:            int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					nginx, _ := catalog.ByKey("nginx")
					h, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
					if err != nil {
						b.Fatal(err)
					}
					if mode.docker {
						tb.PrePull(h, "edge-docker")
					} else {
						tb.PrePull(h, "edge-k8s")
					}
					r, err := tb.Request(0, h)
					if err != nil {
						b.Fatal(err)
					}
					first = r.Total
				})
			}
			b.ReportMetric(simMS(first), "sim-ms-first-request")
		})
	}
}

// BenchmarkFutureWorkServerless evaluates the paper's future work
// (§VIII): the same transparent-access pipeline deploying a serverless
// (WebAssembly) variant of the service, against the container paths.
// The module is fetched/compiled beforehand (the analogue of the cached
// image in Figs. 11/12).
func BenchmarkFutureWorkServerless(b *testing.B) {
	for _, mode := range []string{"wasm", "docker", "k8s"} {
		b.Run(mode, func(b *testing.B) {
			var first time.Duration
			for i := 0; i < b.N; i++ {
				clk := vclock.New()
				clk.Run(func() {
					tb, err := testbed.New(clk, testbed.Options{
						WithFaas:   mode == "wasm",
						WithDocker: mode != "k8s",
						WithKube:   mode == "k8s",
						Seed:       int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					var svc catalog.Service
					if mode == "wasm" {
						svc, err = catalog.WasmService("nginx")
					} else {
						svc, err = catalog.ByKey("nginx")
					}
					if err != nil {
						b.Fatal(err)
					}
					h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(0))
					if err != nil {
						b.Fatal(err)
					}
					target := map[string]string{"wasm": "edge-faas", "docker": "edge-docker", "k8s": "edge-k8s"}[mode]
					if err := tb.PrePull(h, target); err != nil {
						b.Fatal(err)
					}
					r, err := tb.Request(0, h)
					if err != nil {
						b.Fatal(err)
					}
					first = r.Total
				})
			}
			b.ReportMetric(simMS(first), "sim-ms-first-request")
		})
	}
}

// BenchmarkAblationHierarchy quantifies the hierarchical fallback: with
// a farther edge already serving, the first request skips the local
// deployment wait entirely.
func BenchmarkAblationHierarchy(b *testing.B) {
	for _, mode := range []struct {
		name    string
		farEdge bool
	}{{"flat-wait", false}, {"hierarchical-fallback", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var first time.Duration
			for i := 0; i < b.N; i++ {
				clk := vclock.New()
				clk.Run(func() {
					tb, err := testbed.New(clk, testbed.Options{
						WithDocker:  true,
						WithFarEdge: mode.farEdge,
						Seed:        int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					nginx, _ := catalog.ByKey("nginx")
					h, err := tb.RegisterCatalogService(nginx, trace.ServiceAddr(0))
					if err != nil {
						b.Fatal(err)
					}
					tb.PrePull(h, "edge-docker")
					if mode.farEdge {
						tb.PrePull(h, "edge-far")
						if _, err := tb.Controller.PreDeploy(h.Addr, "edge-far"); err != nil {
							b.Fatal(err)
						}
					}
					r, err := tb.Request(0, h)
					if err != nil {
						b.Fatal(err)
					}
					first = r.Total
				})
			}
			b.ReportMetric(simMS(first), "sim-ms-first-request")
		})
	}
}
